// Prefix-shared twig compilation: the set-level layer of the TwigM builder.
//
// The paper's pub/sub scenario runs thousands of standing queries over one
// feed, and real subscription sets overlap heavily: //channel//article/head
// prefixes repeat across queries that diverge only in their last steps.
// Compiling every query into an independent machine makes each of those
// machines push, pop and axis-check the SAME prefix elements — per-event
// cost grows linearly with the set even when routed dispatch skips machines
// an event cannot concern, because prefix names concern every machine that
// mentions them.
//
// This file factors the shared work out. A query's spine is split at the
// first step that carries per-query semantics (a predicate, a value
// comparison, or the output node); the leading purely structural steps —
// name test plus axis, nothing else — form its prefix profile. Profiles of
// all queries in a set merge into one axis-step Trie, evaluated ONCE per
// event by a PrefixRun; each query compiles into a residual machine
// (CompileShared) whose root is anchored at its trie node and consults the
// shared stack instead of owning prefix stacks.
//
// Equivalence is exact, not approximate. A purely structural spine step
// compiles to a machine node whose condition is just "my continuation
// matched": its entries never gate a candidate (deliverCand passes straight
// through a satisfied entry, and the flag that satisfies it is the very
// propagation that carries the candidate), never prune, and never buffer
// text. So the only information the suffix ever reads from the prefix is
// "does an axis-compatible chain of open prefix entries exist at this
// level" — exactly what the shared trie stack answers. Results (Value, Seq,
// NodeOffset, ConfirmedAt, DeliveredAt) and per-machine emission order are
// byte-identical to an unshared run; the randomized differential campaign
// pins this. Steps carrying predicates stay per-query: their entry state
// (flag bitsets, parked candidates) is query-specific, which is the safety
// boundary of "structural predicates where safe" — safe means none.
package twigm

import (
	"strings"

	"repro/internal/sax"
	"repro/internal/xpath"
)

// TrieStep is one shareable spine step: an element name test plus its axis,
// with the local name interned for event dispatch.
type TrieStep struct {
	Axis   xpath.Axis
	Name   string // as written ("*" for the wildcard, "p:a" for prefixed)
	Prefix string
	Local  string
	NameID int32 // symbol ID of the LOCAL name; 0 for "*"
}

// shareableSteps returns the spine nodes of q that can be factored into a
// shared prefix trie: the longest leading chain of element steps with no
// predicate, no value comparison and a continuation (the output node always
// stays in the residual machine, so every query keeps at least one private
// node to create candidates and record fragments on).
func shareableSteps(q *xpath.Query) []*xpath.Node {
	var steps []*xpath.Node
	for n := q.Root; n != nil; n = n.Next {
		if n.Kind != xpath.Element || n.Pred != nil || n.Cmp != nil || n.Next == nil {
			break
		}
		steps = append(steps, n)
	}
	return steps
}

// PrefixProfile returns q's shareable prefix as trie steps, interning local
// names into syms. An empty profile means the query cannot share (its first
// step already carries per-query semantics).
func PrefixProfile(q *xpath.Query, syms *sax.Symbols) []TrieStep {
	nodes := shareableSteps(q)
	if len(nodes) == 0 {
		return nil
	}
	steps := make([]TrieStep, len(nodes))
	for i, n := range nodes {
		prefix, local := n.Prefix, n.Local
		if local == "" && n.Name != "" {
			prefix, local = sax.SplitName(n.Name)
		}
		st := TrieStep{Axis: n.Axis, Name: n.Name, Prefix: prefix, Local: local}
		if n.Name != "*" {
			st.NameID = syms.Intern(local)
		}
		steps[i] = st
	}
	return steps
}

// String renders a profile in path syntax (diagnostics).
func ProfileString(steps []TrieStep) string {
	var b strings.Builder
	for _, st := range steps {
		b.WriteString(st.Axis.String())
		b.WriteString(st.Name)
	}
	return b.String()
}

// ---- the shared prefix trie ----

// trieNode is one axis-step of the shared prefix trie. Nodes live inside a
// Trie's copy-on-write node table and follow its discipline: refs and
// children change only along the grafted/pruned path of a fresh clone.
//
//vitex:cow
type trieNode struct {
	step     TrieStep
	parent   int32   // -1 for steps from the document node
	children []int32 // node IDs, used only for graft matching
	// refs counts the live queries whose anchor path passes through this
	// node; 0 marks a dead (pruned) node awaiting compaction.
	refs int32
}

// Trie is an immutable prefix trie over the shareable leading steps of a
// query set. Mutations (Graft, Prune) return a new Trie by structural
// sharing: the node table is copied (O(nodes) — the same order as the
// engine's epoch clone), child and dispatch lists are shared append-only,
// and lists that lose an entry are rebuilt fresh — in-flight evaluations
// reading an older Trie never observe a mutation. Node IDs are stable for
// the life of a node (compaction, which renumbers, builds a fresh Trie and
// re-anchors through the engine's epoch).
//
//vitex:cow
type Trie struct {
	nodes []trieNode
	roots []int32   // nodes with parent == -1
	elem  [][]int32 // NameID -> live node IDs with that (non-wildcard) name
	wild  []int32   // live node IDs with name "*"

	live    int // nodes with refs > 0
	garbage int // dead nodes still occupying IDs
}

// NewTrie returns an empty trie.
func NewTrie() *Trie { return &Trie{} }

// NumIDs returns the size of the node-ID space (live + dead); PrefixRun
// stacks are indexed by it.
func (t *Trie) NumIDs() int {
	if t == nil {
		return 0
	}
	return len(t.nodes)
}

// Live returns the number of live shared prefix nodes.
func (t *Trie) Live() int {
	if t == nil {
		return 0
	}
	return t.live
}

// Garbage returns the number of dead node IDs awaiting compaction.
func (t *Trie) Garbage() int {
	if t == nil {
		return 0
	}
	return t.garbage
}

// Parent returns the parent node ID of id (-1 for top-level steps).
func (t *Trie) Parent(id int32) int32 { return t.nodes[id].parent }

// clone copies the outer structure for a mutation: the node table is copied
// (refs and child lists change along the grafted/pruned path), dispatch
// tables get fresh outer slices with inner lists shared.
//
//vitex:cowmut builds the fresh copy a mutation writes into
func (t *Trie) clone(symsLen int) *Trie {
	n := symsLen + 1
	if n < len(t.elem) {
		n = len(t.elem)
	}
	next := &Trie{
		nodes:   append([]trieNode(nil), t.nodes...),
		roots:   t.roots,
		elem:    make([][]int32, n),
		wild:    t.wild,
		live:    t.live,
		garbage: t.garbage,
	}
	copy(next.elem, t.elem)
	return next
}

// findChild looks for an existing live child of parent (-1 = top level)
// matching step.
func (t *Trie) findChild(parent int32, step TrieStep) int32 {
	kids := t.roots
	if parent >= 0 {
		kids = t.nodes[parent].children
	}
	for _, id := range kids {
		n := &t.nodes[id]
		if n.refs > 0 && n.step.Axis == step.Axis && n.step.Name == step.Name {
			return id
		}
	}
	return -1
}

// Graft merges a profile into the trie and returns the new trie plus the
// anchor node ID (the node of the profile's last step). A nil/empty profile
// returns the receiver unchanged with anchor -1. symsLen sizes the dispatch
// table (the symbol table may have grown while compiling the query).
//
//vitex:cowmut writes only into the unpublished clone
func (t *Trie) Graft(steps []TrieStep, symsLen int) (*Trie, int32) {
	if len(steps) == 0 {
		return t, -1
	}
	next := t.clone(symsLen)
	parent := int32(-1)
	for _, st := range steps {
		id := next.findChild(parent, st)
		if id < 0 {
			id = int32(len(next.nodes))
			next.nodes = append(next.nodes, trieNode{step: st, parent: parent})
			if parent < 0 {
				// Appends may share backing arrays with older tries; they
				// only ever write past those tries' lengths.
				next.roots = append(next.roots, id)
			} else {
				p := &next.nodes[parent]
				p.children = append(p.children, id)
			}
			if st.Name == "*" {
				next.wild = append(next.wild, id)
			} else {
				next.elem[st.NameID] = append(next.elem[st.NameID], id)
			}
			next.live++
		}
		next.nodes[id].refs++
		parent = id
	}
	return next, parent
}

// Prune releases one query's anchor path and returns the new trie. Nodes
// whose last reference dies are unlinked from every list (fresh backing —
// older tries keep reading the old lists) and their IDs become garbage.
//
//vitex:cowmut writes only into the unpublished clone
func (t *Trie) Prune(anchor int32) *Trie {
	if anchor < 0 {
		return t
	}
	next := t.clone(len(t.elem) - 1)
	for id := anchor; id >= 0; {
		n := &next.nodes[id]
		n.refs--
		if n.refs > 0 {
			id = n.parent
			continue
		}
		// Dead: unlink from the parent's child list and the dispatch
		// tables. Children are necessarily dead already (a child's path
		// refs pass through its parent), so no orphan can remain live.
		if n.parent < 0 {
			next.roots = without(next.roots, id)
		} else {
			p := &next.nodes[n.parent]
			p.children = without(p.children, id)
		}
		if n.step.Name == "*" {
			next.wild = without(next.wild, id)
		} else {
			next.elem[n.step.NameID] = without(next.elem[n.step.NameID], id)
		}
		next.live--
		next.garbage++
		id = n.parent
	}
	return next
}

// without returns a fresh copy of list with id removed.
func without(list []int32, id int32) []int32 {
	out := make([]int32, 0, len(list))
	for _, v := range list {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// ---- shared trie evaluation ----

// AnchorStack is the open-entry stack of one trie node: the levels (element
// depths) of the currently open elements that path-match the node's step
// chain, in ascending order. Residual machines anchored at the node consult
// it for their root axis checks.
type AnchorStack struct {
	levels []int32
}

// CompatElem reports whether an element or text node at depth d has an
// axis-compatible open prefix entry: a proper ancestor for the descendant
// axis, the immediate parent for the child axis.
//
//vitex:hotpath
func (a *AnchorStack) CompatElem(axis xpath.Axis, d int) bool {
	if a == nil || len(a.levels) == 0 {
		return false
	}
	if axis == xpath.Descendant {
		return int(a.levels[0]) < d
	}
	// Child axis: an entry at exactly d-1. Levels ascend; scan from the
	// top past any same-event entry at d.
	for i := len(a.levels) - 1; i >= 0 && int(a.levels[i]) >= d-1; i-- {
		if int(a.levels[i]) == d-1 {
			return true
		}
	}
	return false
}

// CompatAttr reports whether an attribute of the element at depth d is
// axis-compatible: the owner element itself for the child axis, any
// self-or-ancestor owner for the descendant axis (the descendant-or-self
// expansion of '//@a').
//
//vitex:hotpath
func (a *AnchorStack) CompatAttr(axis xpath.Axis, d int) bool {
	if a == nil || len(a.levels) == 0 {
		return false
	}
	if axis == xpath.Descendant {
		return int(a.levels[0]) <= d
	}
	return int(a.levels[len(a.levels)-1]) == d
}

// Open reports whether any prefix entry is open (routing hint).
//
//vitex:hotpath
func (a *AnchorStack) Open() bool { return a != nil && len(a.levels) > 0 }

// prefixOpen is one open trie entry on the PrefixRun's global LIFO.
type prefixOpen struct {
	id    int32
	level int32
}

// PrefixRun evaluates a Trie over one event stream: the runtime stacks of
// the shared prefix layer, maintained once per scan however many residual
// machines anchor into them. A PrefixRun is single-goroutine state (the
// engine keeps one per pooled session and one per parallel shard worker).
type PrefixRun struct {
	trie *Trie
	// stacks[id] is the node's open-entry stack. Pointers are stable from
	// first use, so residual Runs can bind an anchor once per stream.
	stacks []*AnchorStack
	// open is the global LIFO of open entries; entries at the ending
	// element's depth are contiguous at the top.
	open []prefixOpen
	// enabled restricts evaluation to a subset of node IDs (a parallel
	// shard's anchor paths); nil evaluates every live node.
	enabled []bool
	// pushes counts trie entries pushed this stream (dispatch statistics).
	pushes int64
}

// Rebind points the run at a (new) trie and shard filter, growing the stack
// table; existing AnchorStack pointers stay valid. Call between streams.
func (pr *PrefixRun) Rebind(t *Trie, enabled []bool) {
	pr.trie = t
	pr.enabled = enabled
	for len(pr.stacks) < t.NumIDs() {
		pr.stacks = append(pr.stacks, nil)
	}
}

// Stack returns the stable anchor stack for a trie node.
func (pr *PrefixRun) Stack(id int32) *AnchorStack {
	if pr.stacks[id] == nil {
		pr.stacks[id] = &AnchorStack{}
	}
	return pr.stacks[id]
}

// ResetStream clears all open entries for a new document.
func (pr *PrefixRun) ResetStream() {
	for _, e := range pr.open {
		s := pr.stacks[e.id]
		s.levels = s.levels[:0]
	}
	pr.open = pr.open[:0]
	pr.pushes = 0
}

// Pushes returns the number of trie entries pushed this stream.
func (pr *PrefixRun) Pushes() int64 { return pr.pushes }

// HasOpen reports whether any trie entry is open (end-element routing).
//
//vitex:hotpath
func (pr *PrefixRun) HasOpen() bool { return len(pr.open) > 0 }

// StartElement pushes entries for every trie node the event's element
// path-matches. Must run before residual machines see the event (anchored
// child-axis attribute tests read the entry pushed for their owner).
//
//vitex:hotpath
func (pr *PrefixRun) StartElement(ev *sax.Event) {
	t := pr.trie
	if t == nil || t.live == 0 {
		return
	}
	d := int32(ev.Depth)
	if id := ev.NameID; id == sax.SymNone {
		// Producer without a symbol table: match every live node by name
		// (engine front-ends always intern; this is the conservative
		// fallback for alternative drivers).
		for nid := range t.nodes {
			pr.tryPush(int32(nid), ev, d, true)
		}
		return
	} else if id > 0 && int(id) < len(t.elem) {
		for _, nid := range t.elem[id] {
			pr.tryPush(nid, ev, d, false)
		}
	}
	for _, nid := range t.wild {
		pr.tryPush(nid, ev, d, false)
	}
}

//vitex:hotpath
func (pr *PrefixRun) tryPush(nid int32, ev *sax.Event, d int32, checkName bool) {
	n := &pr.trie.nodes[nid]
	if n.refs <= 0 {
		return
	}
	if pr.enabled != nil && !pr.enabled[nid] {
		return
	}
	if checkName {
		if n.step.Name != "*" && n.step.Local != ev.LocalName() {
			return
		}
	}
	if n.step.Prefix != "" && n.step.Prefix != ev.PrefixName() {
		return
	}
	if n.parent < 0 {
		if n.step.Axis == xpath.Child && d != 1 {
			return
		}
	} else {
		ps := pr.stacks[n.parent]
		if !ps.CompatElem(n.step.Axis, int(d)) {
			return
		}
	}
	s := pr.Stack(nid)
	s.levels = append(s.levels, d)
	pr.open = append(pr.open, prefixOpen{id: nid, level: d})
	pr.pushes++
}

// EndElement pops every trie entry opened at depth d.
//
//vitex:hotpath
func (pr *PrefixRun) EndElement(d int) {
	for len(pr.open) > 0 {
		top := pr.open[len(pr.open)-1]
		if int(top.level) != d {
			return
		}
		s := pr.stacks[top.id]
		s.levels = s.levels[:len(s.levels)-1]
		pr.open = pr.open[:len(pr.open)-1]
	}
}

// ---- anchored compilation ----

// CompileShared builds the prefix-shared form of q: the shareable leading
// steps become the program's Profile (to be grafted into a set's Trie by
// the caller) and the remaining suffix compiles into a residual machine
// whose root is anchored — its axis checks read an AnchorStack bound per
// stream via Run.BindAnchor instead of private prefix stacks. A query with
// an empty profile compiles exactly like CompileWith.
//
// Program.Query still returns the FULL original query (so a program can be
// re-added to another engine and re-profiled there); NumNodes counts only
// residual nodes — the per-query footprint under sharing.
func CompileShared(q *xpath.Query, syms *sax.Symbols) (*Program, error) {
	if syms == nil {
		syms = sax.NewSymbols()
	}
	profile := PrefixProfile(q, syms)
	if len(profile) == 0 {
		return CompileWith(q, syms)
	}
	compileCount.Add(1)
	p := &Program{
		query:     q,
		syms:      syms,
		elemIndex: make(map[string][]*node),
		attrIndex: make(map[string][]*node),
		anchored:  true,
		profile:   profile,
	}
	start := q.Root
	for range profile {
		start = start.Next
	}
	root, err := p.build(start, nil)
	if err != nil {
		return nil, err
	}
	p.root = root
	p.freezeDispatch()
	return p, nil
}

// Anchored reports whether the program's root consults a shared prefix
// stack (compiled by CompileShared with a non-empty profile).
func (p *Program) Anchored() bool { return p.anchored }

// Profile returns the shared prefix steps factored out of the program's
// query (nil for unanchored programs). The engine grafts it into its trie;
// trie compaction re-grafts it to re-anchor without recompiling.
func (p *Program) Profile() []TrieStep { return p.profile }

// BindAnchor points an anchored run at the shared prefix stack of its trie
// node for the next stream. The engine rebinds before every stream (pooled
// sessions may have resynced to a different trie). An anchored run with a
// nil anchor matches nothing.
func (r *Run) BindAnchor(a *AnchorStack) { r.anchor = a }
