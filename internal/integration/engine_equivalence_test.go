package integration

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/datagen"

	vitex "repro"
)

// equivalenceCorpora is every datagen corpus family at test-friendly scale.
func equivalenceCorpora() []struct{ name, doc string } {
	return []struct{ name, doc string }{
		{"paperFigure1", datagen.PaperFigure1},
		{"book", datagen.Book{SectionDepth: 5, TableDepth: 3, Repeat: 8, AuthorEvery: 2, PositionEvery: 3}.String()},
		{"protein", datagen.Protein{TargetBytes: 48 << 10, Seed: 7}.String()},
		{"ticker", datagen.Ticker{Trades: 150, Seed: 3}.String()},
		{"recursiveChain", datagen.RecursiveChain(10)},
	}
}

// equivalenceQueries mixes matching, sparse (wrong vocabulary), wildcard,
// attribute, text(), self-comparison and union queries — the shapes routed
// dispatch treats differently.
var equivalenceQueries = []string{
	datagen.PaperQuery,
	datagen.PaperProteinQuery,
	"//trade[symbol='ACME']/price",
	"//trade/volume",
	"//section//table",
	"//title/text()",
	"//symbol[.='GLOBEX']",
	"//*[@id]",
	"//a//a//a",
	"//nosuchelement[nope]/@attr",
	"//phantom[@ghost='1']//void",
	"//trade/price | //trade/volume",
	"//section/title | //reference//author | //nosuch",
	"//a | //a//a",
	"//ProteinEntry/@id | //trade/@seq",
}

// streamSet evaluates the set over doc, collecting per-query result
// sequences.
func streamSet(t *testing.T, qs *vitex.QuerySet, doc string, opts vitex.Options) ([][]vitex.Result, []vitex.Stats) {
	t.Helper()
	results := make([][]vitex.Result, qs.Len())
	stats, err := qs.Stream(strings.NewReader(doc), opts, func(sr vitex.SetResult) error {
		results[sr.QueryIndex] = append(results[sr.QueryIndex], sr.Result)
		return nil
	})
	if err != nil {
		t.Fatalf("QuerySet.Stream: %v", err)
	}
	return results, stats
}

// streamSolo evaluates one query independently over doc.
func streamSolo(t *testing.T, q *vitex.Query, doc string, opts vitex.Options) ([]vitex.Result, vitex.Stats) {
	t.Helper()
	var results []vitex.Result
	stats, err := q.Stream(strings.NewReader(doc), opts, func(r vitex.Result) error {
		results = append(results, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Query.Stream(%s): %v", q.Source(), err)
	}
	return results, stats
}

// TestEngineEquivalenceAllCorpora: for every corpus and every option
// combination (Ordered × CountOnly × UseStdParser), evaluating the full
// query mix through the routed shared scan must equal N independent
// evaluations — result-for-result, including Seq, NodeOffset, Value and the
// Confirmed/Delivered event clocks, and stat-for-stat (the engine reports
// shared-scan counters, which equal what a solo machine counts because a
// solo machine sees every event).
func TestEngineEquivalenceAllCorpora(t *testing.T) {
	qs, err := vitex.NewQuerySet(equivalenceQueries...)
	if err != nil {
		t.Fatal(err)
	}
	solo := make([]*vitex.Query, len(equivalenceQueries))
	for i, src := range equivalenceQueries {
		solo[i] = vitex.MustCompile(src)
	}
	for _, corpus := range equivalenceCorpora() {
		for _, ordered := range []bool{false, true} {
			for _, countOnly := range []bool{false, true} {
				for _, useStd := range []bool{false, true} {
					opts := vitex.Options{Ordered: ordered, CountOnly: countOnly, UseStdParser: useStd}
					name := fmt.Sprintf("%s/ordered=%v/count=%v/std=%v", corpus.name, ordered, countOnly, useStd)
					shared, sharedStats := streamSet(t, qs, corpus.doc, opts)
					for i := range equivalenceQueries {
						want, wantStats := streamSolo(t, solo[i], corpus.doc, opts)
						if !reflect.DeepEqual(shared[i], want) {
							t.Fatalf("%s query %q:\nshared %+v\nsolo   %+v",
								name, equivalenceQueries[i], shared[i], want)
						}
						if sharedStats[i] != wantStats {
							t.Fatalf("%s query %q stats:\nshared %+v\nsolo   %+v",
								name, equivalenceQueries[i], sharedStats[i], wantStats)
						}
					}
					// Sharded evaluation must be byte-identical to the
					// serial routed run, including the emission order
					// the shared callback observes.
					popts := opts
					popts.Parallel = 3
					parallel, parallelStats := streamSet(t, qs, corpus.doc, popts)
					if !reflect.DeepEqual(parallel, shared) {
						t.Fatalf("%s: parallel results diverge from serial\nserial   %+v\nparallel %+v",
							name, shared, parallel)
					}
					if !reflect.DeepEqual(parallelStats, sharedStats) {
						t.Fatalf("%s: parallel stats diverge from serial\nserial   %+v\nparallel %+v",
							name, sharedStats, parallelStats)
					}
				}
			}
		}
	}
}

// TestEngineEquivalenceRepeatedStreams drives one QuerySet over a sequence
// of different documents, interleaved, to prove pooled machine state resets
// completely between documents (no leakage between streams).
func TestEngineEquivalenceRepeatedStreams(t *testing.T) {
	qs, err := vitex.NewQuerySet(equivalenceQueries...)
	if err != nil {
		t.Fatal(err)
	}
	solo := make([]*vitex.Query, len(equivalenceQueries))
	for i, src := range equivalenceQueries {
		solo[i] = vitex.MustCompile(src)
	}
	corpora := equivalenceCorpora()
	for round := 0; round < 3; round++ {
		for _, corpus := range corpora {
			opts := vitex.Options{Ordered: round%2 == 0}
			shared, _ := streamSet(t, qs, corpus.doc, opts)
			for i := range equivalenceQueries {
				want, _ := streamSolo(t, solo[i], corpus.doc, opts)
				if !reflect.DeepEqual(shared[i], want) {
					t.Fatalf("round %d corpus %s query %q:\nshared %+v\nsolo   %+v",
						round, corpus.name, equivalenceQueries[i], shared[i], want)
				}
			}
		}
	}
}

// TestEngineEquivalenceRandomized stresses routing with random documents and
// random queries (one and three branch), across all parser/mode ablations.
func TestEngineEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trials := 30
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		n := 3 + rng.Intn(5)
		sources := make([]string, n)
		for i := range sources {
			sources[i] = datagen.RandomQuery(rng, datagen.DefaultRandomTree, false)
			if rng.Intn(3) == 0 {
				sources[i] += " | " + datagen.RandomQuery(rng, datagen.DefaultRandomTree, false)
			}
		}
		qs, err := vitex.NewQuerySet(sources...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opts := vitex.Options{
			Ordered:      rng.Intn(2) == 0,
			CountOnly:    rng.Intn(2) == 0,
			UseStdParser: rng.Intn(2) == 0,
			Parallel:     rng.Intn(4), // 0-1 serial, 2-3 sharded
		}
		shared, _ := streamSet(t, qs, doc, opts)
		for i, src := range sources {
			want, _ := streamSolo(t, vitex.MustCompile(src), doc, opts)
			if !reflect.DeepEqual(shared[i], want) {
				t.Fatalf("trial %d query %q opts %+v:\nshared %+v\nsolo   %+v\ndoc: %s",
					trial, src, opts, shared[i], want, doc)
			}
		}
	}
}
