package integration

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"

	vitex "repro"
)

// Churn-specific equivalence tests: a QuerySet mutated while alive — with
// warm pooled sessions, mid-document-sequence, and concurrently with
// Stream calls — must behave exactly like a freshly compiled set at every
// point. Run under -race in CI.

// TestQuerySetChurnWalkMatchesFresh drives a random Add/Remove/Replace walk
// and, after every mutation, compares the churned set's complete output
// (per-query results with Seq/offsets/clocks, and stats) against a freshly
// compiled set over the same sources — serial, parallel, ordered and
// count-only.
func TestQuerySetChurnWalkMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	gen := datagen.DefaultQueryGen
	doc := datagen.ChurnRandomTree.Generate(rng)
	qs, err := vitex.NewQuerySet()
	if err != nil {
		t.Fatal(err)
	}
	var sources []string
	steps := 50
	if testing.Short() {
		steps = 12
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(4); {
		case op <= 1 || len(sources) == 0: // Add (weighted: sets should grow)
			src := gen.Generate(rng)
			if _, err := qs.Add(vitex.MustCompile(src)); err != nil {
				t.Fatalf("step %d: add %q: %v", step, src, err)
			}
			sources = append(sources, src)
		case op == 2: // Remove
			i := rng.Intn(len(sources))
			if err := qs.Remove(i); err != nil {
				t.Fatalf("step %d: remove %d: %v", step, i, err)
			}
			sources = append(sources[:i], sources[i+1:]...)
		default: // Replace
			i := rng.Intn(len(sources))
			src := gen.Generate(rng)
			if err := qs.Replace(i, vitex.MustCompile(src)); err != nil {
				t.Fatalf("step %d: replace %d %q: %v", step, i, src, err)
			}
			sources[i] = src
		}
		fresh, err := vitex.NewQuerySet(sources...)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		opts := vitex.Options{
			Ordered:   step%2 == 0,
			CountOnly: step%3 == 0,
			Parallel:  step % 3, // 0-1 serial, 2 sharded
		}
		churnRes, churnStats := streamSet(t, qs, doc, opts)
		freshRes, freshStats := streamSet(t, fresh, doc, opts)
		if !reflect.DeepEqual(churnRes, freshRes) {
			t.Fatalf("step %d (sources %q): churned results diverge\nchurned %+v\nfresh   %+v",
				step, sources, churnRes, freshRes)
		}
		if !reflect.DeepEqual(churnStats, freshStats) {
			t.Fatalf("step %d (sources %q): churned stats diverge\nchurned %+v\nfresh   %+v",
				step, sources, churnStats, freshStats)
		}
	}
	// The walk's engine must have compiled exactly one machine per branch
	// ever added — never the rest of the set.
	m := qs.Metrics()
	if m.Compiles > int64(4*steps) {
		t.Fatalf("churn walk compiled %d machines over %d mutations", m.Compiles, steps)
	}
}

// TestQuerySetRemoveWithWarmSessions removes a query whose pooled sessions
// (serial and parallel) have already evaluated documents; the surviving
// queries must keep producing exactly their fresh-set output from the same
// warm pools.
func TestQuerySetRemoveWithWarmSessions(t *testing.T) {
	doc := datagen.Ticker{Trades: 100, Seed: 3}.String()
	qs, err := vitex.NewQuerySet(
		"//trade[symbol='ACME']/price",
		"//trade/volume",
		"//trade/@seq",
	)
	if err != nil {
		t.Fatal(err)
	}
	// Warm serial and parallel session pools with all three machines live.
	streamSet(t, qs, doc, vitex.Options{})
	streamSet(t, qs, doc, vitex.Options{Parallel: 2})

	if err := qs.Remove(1); err != nil {
		t.Fatal(err)
	}
	fresh, err := vitex.NewQuerySet("//trade[symbol='ACME']/price", "//trade/@seq")
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []vitex.Options{{}, {Ordered: true}, {Parallel: 2}} {
		got, gotStats := streamSet(t, qs, doc, opts)
		want, wantStats := streamSet(t, fresh, doc, opts)
		if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(gotStats, wantStats) {
			t.Fatalf("opts %+v: warm-pool set diverges from fresh after Remove\ngot  %+v\nwant %+v",
				opts, got, want)
		}
	}
}

// TestQuerySetAddMidDocumentSequence adds a query halfway through a long
// sequence of documents served by one live set: earlier documents must not
// see it, later documents must, and an in-flight snapshot taken before the
// Add must keep evaluating the old membership.
func TestQuerySetAddMidDocumentSequence(t *testing.T) {
	qs, err := vitex.NewQuerySet("//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	const docs = 20
	for i := 0; i < docs; i++ {
		doc := datagen.Ticker{Trades: 50, Seed: int64(i + 1)}.String()
		if i == docs/2 {
			if _, err := qs.Add(vitex.MustCompile("//trade/volume")); err != nil {
				t.Fatal(err)
			}
		}
		counts, err := qs.Counts(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		wantQueries := 1
		if i >= docs/2 {
			wantQueries = 2
		}
		if len(counts) != wantQueries {
			t.Fatalf("doc %d: %d queries reporting, want %d", i, len(counts), wantQueries)
		}
		if i >= docs/2 && counts[1] != 50 {
			t.Fatalf("doc %d: added query counted %d volumes, want 50", i, counts[1])
		}
	}
}

// TestQuerySetConcurrentChurnAndStreams interleaves Add/Remove/Replace with
// concurrent Stream calls (serial and sharded) on one live set. Every
// stream must complete without error and be internally consistent with the
// membership snapshot it started from: one stats entry per query, every
// emitted QueryIndex within range, and per-query result counts that match a
// fresh evaluation of that query over the same document.
func TestQuerySetConcurrentChurnAndStreams(t *testing.T) {
	doc := datagen.Ticker{Trades: 60, Seed: 5}.String()
	// Solo counts for every query the churner can install, computed up
	// front: any snapshot's per-query output must match one of these.
	vocab := []string{
		"//trade[symbol='ACME']/price",
		"//trade/volume",
		"//trade/@seq",
		"//trade[price>150]/price",
		"//news//absent",
	}
	solo := make(map[string]int64)
	for _, src := range vocab {
		n, err := vitex.MustCompile(src).Count(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		solo[src] = n
	}

	qs, err := vitex.NewQuerySet(vocab[0], vocab[1])
	if err != nil {
		t.Fatal(err)
	}
	// The mirror of the set's sources, updated under mu in lockstep with
	// the set; streams validate against the snapshot they observe.
	var mu sync.Mutex
	sources := []string{vocab[0], vocab[1]}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(par int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				counts := make(map[int]int64)
				stats, err := qs.Stream(strings.NewReader(doc), vitex.Options{CountOnly: true, Parallel: par},
					func(sr vitex.SetResult) error {
						counts[sr.QueryIndex]++
						return nil
					})
				if err != nil {
					t.Errorf("stream during churn: %v", err)
					return
				}
				for qi := range counts {
					if qi < 0 || qi >= len(stats) {
						t.Errorf("QueryIndex %d outside snapshot of %d queries", qi, len(stats))
						return
					}
				}
			}
		}(g % 3) // 0,1 serial; 2 sharded
	}

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 150; i++ {
		mu.Lock()
		switch {
		case len(sources) < 2 || rng.Intn(3) > 0:
			src := vocab[rng.Intn(len(vocab))]
			if _, err := qs.Add(vitex.MustCompile(src)); err != nil {
				t.Fatal(err)
			}
			sources = append(sources, src)
		default:
			i := rng.Intn(len(sources))
			if err := qs.Remove(i); err != nil {
				t.Fatal(err)
			}
			sources = append(sources[:i], sources[i+1:]...)
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()

	// Quiescent check: the final membership streams exactly its solo
	// counts.
	mu.Lock()
	final := append([]string(nil), sources...)
	mu.Unlock()
	counts, err := qs.Counts(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(final) {
		t.Fatalf("final set has %d queries, mirror has %d", len(counts), len(final))
	}
	for i, src := range final {
		if counts[i] != solo[src] {
			t.Fatalf("final query %d (%s) counted %d, solo %d", i, src, counts[i], solo[src])
		}
	}
}
