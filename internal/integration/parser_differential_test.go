package integration

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/datagen"

	vitex "repro"
)

// This file is the permanent differential harness between the two XML
// front-ends: every document in the edge-case corpus, evaluated under both
// the custom scanner and the encoding/xml adapter, must produce identical
// results — value-for-value, offset-for-offset, clock-for-clock. This is the
// harness that caught the two conformance bugs fixed alongside it: prefixed
// elements matching under one parser but not the other, and UTF-8 BOMs
// rejected as "character data outside root element" by both.

// differentialDocs is the seeded corpus of edge-case documents. Each entry
// names the XML surface it exercises.
func differentialDocs() []struct{ name, doc string } {
	deep := strings.Repeat("<a k='1'>", 60) + "x" + strings.Repeat("</a>", 60)
	return []struct{ name, doc string }{
		{"plain", `<r><a>x</a><b>y</b></r>`},
		{"prefixes", `<r xmlns:p='u'><p:a>x</p:a><a>y</a></r>`},
		{"prefixAttrs", `<r xmlns:p='u'><a p:k='1' k='2'>x</a></r>`},
		{"defaultNS", `<r xmlns='u'><a>x</a><a>y</a></r>`},
		{"nestedNS", `<r xmlns:p='u'><p:a><b xmlns:q='v'><q:c>z</q:c></b></p:a></r>`},
		{"utf8BOM", "\xEF\xBB\xBF<r><a>1</a><a>2</a></r>"},
		{"bomAndDecl", "\xEF\xBB\xBF<?xml version=\"1.0\"?><r><a>1</a></r>"},
		{"cdata", `<r><a>one<![CDATA[ & two <raw> ]]>three</a></r>`},
		{"cdataOnly", `<r><a><![CDATA[x]]></a></r>`},
		{"entityAttrs", `<r><a k="x&amp;y&#65;&quot;" j='&lt;&gt;'>v</a></r>`},
		{"entityText", `<r><a>x &amp; y &#x41;</a></r>`},
		{"commentSplit", `<r><a>one<!-- c -->two</a></r>`},
		{"piSplit", `<r><a>one<?pi data?>two</a></r>`},
		{"selfClosing", `<r><a k='1'/><a></a><a/></r>`},
		{"deepNesting", "<r>" + deep + "</r>"},
		{"declDoctype", `<?xml version="1.0" encoding="UTF-8"?><r><a>x</a></r>`},
		{"whitespace", "<r>\n  <a>x</a>\n  <a>\ty\r\n</a>\n</r>"},
		{"crlf", "<r>\r\n<a k='v\r\nw\rz'>one\r\ntwo\rthree</a>\r</r>"},
		{"crlfCDATA", "<r><a><![CDATA[a\r\nb\rc]]>\r\nd</a></r>"},
		{"charRefCR", "<r><a k='x&#13;y'>p&#13;q</a></r>"},
	}
}

// differentialQueries covers the name-test, attribute, text, predicate and
// union shapes whose semantics could plausibly diverge between front-ends.
var differentialQueries = []string{
	"//a",
	"//p:a",
	"//q:c",
	"//r/*",
	"//a/text()",
	"//a/@k",
	"//a[@k='1']",
	"//a[@k]",
	"//*[@k]",
	"//a[.='onetwo']",
	"//r//a",
	"//a//a//a",
	"//a | //b",
	"//p:a | //a",
	"//@k | //@j",
}

// evalBoth evaluates src over doc under both parsers with the given options
// and returns the two result sequences.
func evalBoth(t *testing.T, src, doc string, opts vitex.Options) (custom, std []vitex.Result, customErr, stdErr error) {
	t.Helper()
	q := vitex.MustCompile(src)
	collect := func(useStd bool) ([]vitex.Result, error) {
		o := opts
		o.UseStdParser = useStd
		var out []vitex.Result
		_, err := q.Stream(strings.NewReader(doc), o, func(r vitex.Result) error {
			out = append(out, r)
			return nil
		})
		return out, err
	}
	custom, customErr = collect(false)
	std, stdErr = collect(true)
	return custom, std, customErr, stdErr
}

// TestParserDifferential is the permanent harness: identical results under
// both front-ends for every corpus document, query and option combination.
func TestParserDifferential(t *testing.T) {
	for _, d := range differentialDocs() {
		for _, src := range differentialQueries {
			for _, opts := range []vitex.Options{{}, {Ordered: true}, {CountOnly: true}} {
				custom, std, cerr, serr := evalBoth(t, src, d.doc, opts)
				if cerr != nil || serr != nil {
					t.Fatalf("doc %s query %q opts %+v: custom err=%v, std err=%v", d.name, src, opts, cerr, serr)
				}
				if !reflect.DeepEqual(custom, std) {
					t.Fatalf("doc %s query %q opts %+v:\ncustom %+v\nstd    %+v\ndoc: %s",
						d.name, src, opts, custom, std, d.doc)
				}
			}
		}
	}
}

// TestPrefixedNameRegression pins the repro from the issue: under the old
// code //a found <p:a> with the std parser (which strips prefixes) but not
// with the custom scanner (which kept them), so the answer depended on the
// parser. Both must now match local names: //a finds both <p:a> and <a>,
// //p:a finds only <p:a>, and //u:a (wrong prefix) finds nothing.
func TestPrefixedNameRegression(t *testing.T) {
	doc := `<r xmlns:p='u'><p:a>x</p:a><a>y</a></r>`
	for _, useStd := range []bool{false, true} {
		opts := vitex.Options{UseStdParser: useStd}
		check := func(src string, want []string) {
			t.Helper()
			q := vitex.MustCompile(src)
			var got []string
			if _, err := q.Stream(strings.NewReader(doc), opts, func(r vitex.Result) error {
				got = append(got, r.Value)
				return nil
			}); err != nil {
				t.Fatalf("std=%v %s: %v", useStd, src, err)
			}
			if !equal(got, want) {
				t.Fatalf("std=%v %s: got %q, want %q", useStd, src, got, want)
			}
		}
		check("//a", []string{"<p:a>x</p:a>", "<a>y</a>"})
		check("//p:a", []string{"<p:a>x</p:a>"})
		check("//u:a", nil)
		check("//a/text()", []string{"x", "y"})
	}
}

// TestBOMHandling: a UTF-8 BOM must be skipped by both front-ends; UTF-16
// and UTF-32 BOMs must be rejected with an unsupported-encoding error, not a
// tag-soup syntax error.
func TestBOMHandling(t *testing.T) {
	q := vitex.MustCompile("//a/text()")
	for _, useStd := range []bool{false, true} {
		opts := vitex.Options{UseStdParser: useStd}
		got, err := func() ([]string, error) {
			var out []string
			_, err := q.Stream(strings.NewReader("\xEF\xBB\xBF<r><a>1</a></r>"), opts, func(r vitex.Result) error {
				out = append(out, r.Value)
				return nil
			})
			return out, err
		}()
		if err != nil {
			t.Fatalf("std=%v UTF-8 BOM: %v", useStd, err)
		}
		if !equal(got, []string{"1"}) {
			t.Fatalf("std=%v UTF-8 BOM: got %q", useStd, got)
		}
		for name, doc := range map[string]string{
			"UTF-16BE": "\xFE\xFF\x00<\x00r",
			"UTF-16LE": "\xFF\xFE<\x00r\x00",
			"UTF-32BE": "\x00\x00\xFE\xFF",
		} {
			_, err := q.Stream(strings.NewReader(doc), opts, func(vitex.Result) error { return nil })
			if err == nil || !strings.Contains(err.Error(), "unsupported encoding") {
				t.Fatalf("std=%v %s: err = %v, want unsupported-encoding error", useStd, name, err)
			}
		}
	}
}

// TestParserDifferentialRandomized extends the harness with seeded random
// documents and queries — the same generator the engine equivalence campaign
// uses, here contrasting the two front-ends instead of two dispatch modes.
func TestParserDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		src := datagen.RandomQuery(rng, datagen.DefaultRandomTree, false)
		if rng.Intn(4) == 0 {
			src += " | " + datagen.RandomQuery(rng, datagen.DefaultRandomTree, false)
		}
		opts := vitex.Options{Ordered: rng.Intn(2) == 0}
		custom, std, cerr, serr := evalBoth(t, src, doc, opts)
		if cerr != nil || serr != nil {
			t.Fatalf("trial %d %q: custom err=%v, std err=%v", trial, src, cerr, serr)
		}
		if !reflect.DeepEqual(custom, std) {
			t.Fatalf("trial %d query %q:\ncustom %+v\nstd    %+v\ndoc: %s", trial, src, custom, std, doc)
		}
	}
}
