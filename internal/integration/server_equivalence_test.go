package integration

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	vitex "repro"
	"repro/client"
	"repro/internal/datagen"
	"repro/internal/server"
)

// wireResult is the comparison key of the serving-equivalence campaign: the
// fields a subscriber actually consumes, in delivery order.
type wireResult struct {
	doc        int64 // server DocSeq / shadow publish number (1-based)
	seq        int64
	nodeOffset int64
	value      string
}

// shadowSet mirrors the broker's channel bookkeeping over a plain library
// QuerySet: same Add/Remove/Replace sequence, same per-document streaming
// options, results collected per logical subscription.
type shadowSet struct {
	t    *testing.T
	qs   *vitex.QuerySet
	subs []string // parallel to query indexes: logical subscription key
	got  map[string][]wireResult
	docs int64
}

func newShadowSet(t *testing.T) *shadowSet {
	qs, err := vitex.NewQuerySet()
	if err != nil {
		t.Fatal(err)
	}
	return &shadowSet{t: t, qs: qs, got: map[string][]wireResult{}}
}

func (s *shadowSet) add(key, query string) {
	q, err := vitex.Compile(query)
	if err != nil {
		s.t.Fatal(err)
	}
	if _, err := s.qs.Add(q); err != nil {
		s.t.Fatal(err)
	}
	s.subs = append(s.subs, key)
}

func (s *shadowSet) remove(key string) {
	for i, k := range s.subs {
		if k == key {
			if err := s.qs.Remove(i); err != nil {
				s.t.Fatal(err)
			}
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			return
		}
	}
	s.t.Fatalf("shadow remove: unknown key %s", key)
}

func (s *shadowSet) replace(key, query string) {
	q, err := vitex.Compile(query)
	if err != nil {
		s.t.Fatal(err)
	}
	for i, k := range s.subs {
		if k == key {
			if err := s.qs.Replace(i, q); err != nil {
				s.t.Fatal(err)
			}
			return
		}
	}
	s.t.Fatalf("shadow replace: unknown key %s", key)
}

// publish evaluates doc with the library, collecting per-subscription
// results exactly as the broker does: default options (confirmation-order
// streaming), serial scan.
func (s *shadowSet) publish(doc string) {
	s.docs++
	seq := s.docs
	subs := append([]string(nil), s.subs...)
	_, err := s.qs.Stream(strings.NewReader(doc), vitex.Options{}, func(sr vitex.SetResult) error {
		key := subs[sr.QueryIndex]
		s.got[key] = append(s.got[key], wireResult{doc: seq, seq: sr.Seq, nodeOffset: sr.NodeOffset, value: sr.Value})
		return nil
	})
	if err != nil {
		s.t.Fatal(err)
	}
}

// TestServerEquivalentToLibrary is the acceptance gate of the serving
// subsystem: a churned 100-query channel, driven entirely over the wire
// (subscribe / replace / unsubscribe / publish through HTTP, matches
// consumed from the NDJSON streams), must deliver per-subscription results
// byte-identical — Value, Seq, NodeOffset, in order — to the same sequence
// of operations run directly against a library QuerySet.
func TestServerEquivalentToLibrary(t *testing.T) {
	b := server.New(server.Config{RingSize: 1 << 15, Policy: server.PolicyBlock})
	ts := httptest.NewServer(server.Handler(b))
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	}()
	cl := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	shadow := newShadowSet(t)

	// 100 standing queries: 10 matching the ticker vocabulary, 90 dead.
	sources := datagen.SparseTickerQueries(10, 90)
	const channel = "equiv"

	type liveSub struct {
		id     string
		stream *client.ResultStream
	}
	subs := map[string]*liveSub{} // id -> consumer
	var mu sync.Mutex
	got := map[string][]wireResult{}
	var consumers sync.WaitGroup

	attach := func(id string) {
		stream, err := cl.Results(ctx, channel, id)
		if err != nil {
			t.Fatal(err)
		}
		ls := &liveSub{id: id, stream: stream}
		subs[id] = ls
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			defer stream.Close()
			for {
				d, err := stream.Next()
				if err != nil {
					return
				}
				switch d.Type {
				case server.DeliveryResult:
					mu.Lock()
					got[id] = append(got[id], wireResult{doc: d.DocSeq, seq: d.Seq, nodeOffset: d.NodeOffset, value: d.Value})
					mu.Unlock()
				case server.DeliveryGap:
					t.Errorf("sub %s: unexpected gap %+v", id, d)
					return
				case server.DeliveryEnd:
					return
				}
			}
		}()
	}

	subscribe := func(query string) string {
		resp, err := cl.Subscribe(ctx, channel, query)
		if err != nil {
			t.Fatal(err)
		}
		shadow.add(resp.ID, query)
		attach(resp.ID)
		return resp.ID
	}

	var ids []string
	for _, q := range sources {
		ids = append(ids, subscribe(q))
	}

	publish := func(doc string) {
		if _, err := cl.Publish(ctx, channel, strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		shadow.publish(doc)
	}

	doc := func(seed int64) string {
		return datagen.Ticker{Trades: 400, Seed: seed}.String()
	}

	// The churn script: documents interleaved with subscription mutations,
	// every op mirrored on the shadow set.
	publish(doc(1))

	// Remove a third of the matching queries and some dead weight.
	for _, i := range []int{0, 3, 6, 20, 40, 60} {
		if err := cl.Unsubscribe(ctx, channel, ids[i]); err != nil {
			t.Fatal(err)
		}
		shadow.remove(ids[i])
	}
	publish(doc(2))

	// Replace: flip some dead queries into matching ones and vice versa.
	for i, repl := range map[int]string{
		1:  "//trade/volume",
		25: "//trade[symbol='ACME']/volume",
		50: "//trade/symbol/text()",
	} {
		if _, err := cl.Replace(ctx, channel, ids[i], repl); err != nil {
			t.Fatal(err)
		}
		shadow.replace(ids[i], repl)
		_ = i
	}
	publish(doc(3))

	// Fresh subscriptions on the churned channel.
	for _, q := range []string{"//trade[price>100]/symbol/text()", "//trade/price"} {
		ids = append(ids, subscribe(q))
	}
	publish(doc(4))
	publish(doc(5))

	// Drain: shutdown ends every stream with an end marker.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := b.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	consumers.Wait()

	// Compare: every subscription that ever existed, byte for byte, in
	// per-subscription delivery order.
	if len(shadow.got) == 0 {
		t.Fatal("shadow produced nothing; test is vacuous")
	}
	totalWire, totalShadow := 0, 0
	for id, want := range shadow.got {
		have := got[id]
		if len(have) != len(want) {
			t.Fatalf("sub %s: %d wire results vs %d library results", id, len(have), len(want))
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("sub %s result %d:\n  wire:    %+v\n  library: %+v", id, i, have[i], want[i])
			}
		}
		totalWire += len(have)
		totalShadow += len(want)
	}
	// And nothing extra arrived for subscriptions the shadow knows nothing
	// about (there are none by construction, but keep the net tight).
	for id := range got {
		if _, okSub := shadow.got[id]; !okSub && len(got[id]) > 0 {
			t.Fatalf("wire delivered %d results for unknown sub %s", len(got[id]), id)
		}
	}
	if totalWire == 0 {
		t.Fatal("zero results flowed; test is vacuous")
	}
	t.Logf("equivalence held over %d deliveries across %d subscriptions", totalWire, len(shadow.got))
}
