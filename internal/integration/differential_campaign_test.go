package integration

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dom"
	"repro/internal/xmlscan"
	"repro/internal/xpath"

	vitex "repro"
)

// This file is the randomized differential campaign: grammar-driven random
// queries (datagen.QueryGen — the full supported fragment, including nested
// predicates, disjunctions and unions) over random recursive documents, with
// every (query, document) pair asserted along five independent equivalence
// axes:
//
//  1. TwigM == naive match enumeration (where the naive fragment allows)
//  2. TwigM == DOM oracle (random access is ground truth by definition)
//  3. serial routed dispatch == parallel sharded dispatch (results AND stats)
//  4. custom scanner == encoding/xml front-end (results AND clocks)
//  5. churned QuerySet (built by Add/Remove/Replace) == freshly compiled set
//
// In normal `go test` mode the campaign covers at least 500 pairs; -short
// shrinks it to a smoke test.

// oracleUnionResults evaluates all branches via the DOM, deduplicated in
// document order — the union semantics ground truth.
func oracleUnionResults(t *testing.T, d *dom.Document, branches []*xpath.Query) []string {
	t.Helper()
	nodes := dom.EvalUnion(d, branches)
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Serialize())
	}
	return out
}

func TestDifferentialCampaign(t *testing.T) {
	rounds := 130
	const perRound = 4 // queries per document: rounds*perRound pairs
	if testing.Short() {
		rounds = 15
	}
	rng := rand.New(rand.NewSource(20260725))
	docGens := []datagen.RandomTree{datagen.DefaultRandomTree, datagen.ChurnRandomTree}
	pairs, naiveChecked := 0, 0

	for round := 0; round < rounds; round++ {
		doc := docGens[round%len(docGens)].Generate(rng)
		d, err := dom.Build(xmlscan.NewScanner(strings.NewReader(doc)))
		if err != nil {
			t.Fatalf("round %d: dom build: %v\ndoc: %s", round, err, doc)
		}
		gen := datagen.DefaultQueryGen
		sources := make([]string, perRound)
		for i := range sources {
			gen.ConjunctiveOnly = i%2 == 0
			sources[i] = gen.Generate(rng)
		}

		for _, src := range sources {
			pairs++
			branches, err := xpath.ParseUnion(src)
			if err != nil {
				t.Fatalf("round %d: generated query %q does not parse: %v", round, src, err)
			}
			want := oracleUnionResults(t, d, branches)

			// Axis 2: TwigM (through the full vitex engine stack, union
			// included) against the DOM oracle.
			q := vitex.MustCompile(src)
			got, err := q.EvaluateString(doc)
			if err != nil {
				t.Fatalf("round %d %q: %v", round, src, err)
			}
			if !equal(got, want) {
				t.Fatalf("round %d: twigm disagrees with oracle\nquery: %s\ndoc: %s\n got: %q\nwant: %q",
					round, src, doc, got, want)
			}

			// Axis 1: the naive match-enumeration baseline, where its
			// fragment allows (single branch, no disjunction).
			if len(branches) == 1 {
				if ngot, ok := naiveResults(t, doc, branches[0]); ok {
					naiveChecked++
					if !equal(ngot, want) {
						t.Fatalf("round %d: naive disagrees with oracle\nquery: %s\ndoc: %s\n got: %q\nwant: %q",
							round, src, doc, ngot, want)
					}
				}
			}

			// Axis 4: both XML front-ends, full Result comparison (values,
			// Seq, NodeOffset, Confirmed/Delivered clocks).
			custom, std, cerr, serr := evalBoth(t, src, doc, vitex.Options{Ordered: round%2 == 0})
			if cerr != nil || serr != nil {
				t.Fatalf("round %d %q: custom err=%v, std err=%v", round, src, cerr, serr)
			}
			if !reflect.DeepEqual(custom, std) {
				t.Fatalf("round %d: front-ends disagree\nquery: %s\ndoc: %s\ncustom %+v\nstd    %+v",
					round, src, doc, custom, std)
			}
		}

		// Axis 3: the whole round's set, serial vs sharded (results, Seq
		// and stats must be byte-identical).
		qs, err := vitex.NewQuerySet(sources...)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		opts := vitex.Options{Ordered: round%2 == 0, CountOnly: round%3 == 0}
		serial, serialStats := streamSet(t, qs, doc, opts)
		popts := opts
		popts.Parallel = 2 + round%3
		parallel, parallelStats := streamSet(t, qs, doc, popts)
		if !reflect.DeepEqual(parallel, serial) || !reflect.DeepEqual(parallelStats, serialStats) {
			t.Fatalf("round %d: parallel diverges from serial\nqueries: %q\ndoc: %s\nserial   %+v %+v\nparallel %+v %+v",
				round, sources, doc, serial, serialStats, parallel, parallelStats)
		}

		// Axis 5: a set assembled by live churn — junk queries added up
		// front and removed again, one query Replaced in place — must be
		// indistinguishable from the freshly compiled set: same results,
		// same Seq, same stats.
		churned, err := vitex.NewQuerySet("//zzzjunk[qqq]/@none", "//junktwo//zzz")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, src := range sources {
			if _, err := churned.Add(vitex.MustCompile(src)); err != nil {
				t.Fatalf("round %d: churn add %q: %v", round, src, err)
			}
		}
		if err := churned.Remove(0); err != nil { // junk 1; indexes shift
			t.Fatal(err)
		}
		if err := churned.Remove(0); err != nil { // junk 2
			t.Fatal(err)
		}
		ri := round % perRound
		if err := churned.Replace(ri, vitex.MustCompile(sources[ri])); err != nil {
			t.Fatalf("round %d: churn replace: %v", round, err)
		}
		churnRes, churnStats := streamSet(t, churned, doc, opts)
		if !reflect.DeepEqual(churnRes, serial) || !reflect.DeepEqual(churnStats, serialStats) {
			t.Fatalf("round %d: churned set diverges from fresh set\nqueries: %q\ndoc: %s\nfresh   %+v %+v\nchurned %+v %+v",
				round, sources, doc, serial, serialStats, churnRes, churnStats)
		}
	}

	if !testing.Short() {
		if pairs < 500 {
			t.Fatalf("campaign covered %d pairs, want >= 500", pairs)
		}
		if naiveChecked < 50 {
			t.Fatalf("naive axis exercised on only %d pairs", naiveChecked)
		}
	}
	t.Logf("campaign: %d (query, doc) pairs, naive axis on %d", pairs, naiveChecked)
}
