// Package integration cross-checks the three engines — TwigM (the paper's
// contribution), the naive match-enumeration baseline, and the DOM oracle —
// on randomized workloads. Any semantic drift between the streaming engines
// and the random-access oracle is a correctness bug by definition (§1 of the
// paper: streaming evaluation must return exactly what non-streaming
// evaluation returns).
package integration

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dom"
	"repro/internal/naive"
	"repro/internal/sax"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

// oracleResults evaluates via DOM and returns serialized results in
// document order.
func oracleResults(t *testing.T, doc string, q *xpath.Query) []string {
	t.Helper()
	d, err := dom.Build(xmlscan.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatalf("dom build: %v", err)
	}
	nodes := dom.Eval(d, q)
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Serialize())
	}
	return out
}

func twigmResults(t *testing.T, doc string, q *xpath.Query, opts twigm.Options) []string {
	t.Helper()
	prog, err := twigm.Compile(q)
	if err != nil {
		t.Fatalf("compile %s: %v", q, err)
	}
	results, _, err := twigm.Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), opts)
	if err != nil {
		t.Fatalf("twigm %s: %v", q, err)
	}
	return twigm.Values(results)
}

func naiveResults(t *testing.T, doc string, q *xpath.Query) ([]string, bool) {
	t.Helper()
	eng, err := naive.Compile(q)
	if errors.Is(err, naive.ErrUnsupported) {
		return nil, false
	}
	if err != nil {
		t.Fatalf("naive compile %s: %v", q, err)
	}
	results, _, err := naive.Collect(eng, xmlscan.NewScanner(strings.NewReader(doc)), naive.Options{MaxMatches: 2_000_000})
	if err != nil {
		t.Fatalf("naive %s: %v", q, err)
	}
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, true
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEnginesAgreeOnRandomWorkloads is the central property test: 400
// random (document, query) pairs; every engine and option combination must
// agree with the oracle.
func TestEnginesAgreeOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(20260613))
	trials := 400
	if testing.Short() {
		trials = 60
	}
	for i := 0; i < trials; i++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		conj := i%2 == 0
		src := datagen.RandomQuery(rng, datagen.DefaultRandomTree, conj)
		q, err := xpath.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated query %q does not parse: %v", i, src, err)
		}
		want := oracleResults(t, doc, q)
		for _, opts := range []twigm.Options{
			{},
			{Ordered: true},
			{DisablePrune: true, DisableEagerPropagation: true},
		} {
			got := twigmResults(t, doc, q, opts)
			if !equal(got, want) {
				t.Fatalf("trial %d: twigm(%+v) disagrees with oracle\nquery: %s\ndoc: %s\n got: %q\nwant: %q",
					i, opts, src, doc, got, want)
			}
		}
		if got, ok := naiveResults(t, doc, q); ok && !equal(got, want) {
			t.Fatalf("trial %d: naive disagrees with oracle\nquery: %s\ndoc: %s\n got: %q\nwant: %q",
				i, src, doc, got, want)
		}
	}
}

// TestFrontEndsAgree feeds the same random documents through the custom
// scanner and encoding/xml; the event traces must be identical.
func TestFrontEndsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 300
	if testing.Short() {
		trials = 50
	}
	for i := 0; i < trials; i++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		trace := func(d sax.Driver) []string {
			var out []string
			err := d.Run(sax.HandlerFunc(func(ev *sax.Event) error {
				out = append(out, fmt.Sprintf("%v|%s|%d|%s|%v", ev.Kind, ev.Name, ev.Depth, ev.Text, ev.Attrs))
				return nil
			}))
			if err != nil {
				t.Fatalf("trial %d: %v\ndoc: %s", i, err, doc)
			}
			return out
		}
		a := trace(xmlscan.NewScanner(strings.NewReader(doc)))
		b := trace(sax.NewStdDriver(strings.NewReader(doc)))
		if !equal(a, b) {
			t.Fatalf("trial %d: front-ends disagree on %s\nxmlscan: %v\nstd:     %v", i, doc, a, b)
		}
	}
}

// TestDeepRecursionAgainstOracle stresses the compact encoding where the
// pattern-match count explodes: chains //a//a…//b over deeply nested a's.
func TestDeepRecursionAgainstOracle(t *testing.T) {
	for depth := 1; depth <= 10; depth++ {
		doc := datagen.RecursiveChain(depth)
		for k := 1; k <= 4; k++ {
			q := xpath.MustParse(datagen.ChainQuery(k))
			want := oracleResults(t, doc, q)
			got := twigmResults(t, doc, q, twigm.Options{})
			if !equal(got, want) {
				t.Fatalf("depth %d, k %d: twigm %q, oracle %q", depth, k, got, want)
			}
		}
	}
}

// TestBookWorkloadsAgainstOracle checks the E5 workload family end to end.
func TestBookWorkloadsAgainstOracle(t *testing.T) {
	shapes := []datagen.Book{
		datagen.Figure1Shape,
		{SectionDepth: 4, TableDepth: 4, Repeat: 3, AuthorEvery: 2, PositionEvery: 2},
		{SectionDepth: 2, TableDepth: 5, Repeat: 4, AuthorEvery: 1, PositionEvery: 3},
		{SectionDepth: 5, TableDepth: 2, Repeat: 2, AuthorEvery: 0, PositionEvery: 1},
	}
	queries := []string{
		datagen.PaperQuery,
		"//section//table//cell",
		"//section[author]//table//cell",
		"//section//table[position]//cell",
		"//table[position and cell]",
		"//section[.//position]//cell",
	}
	for si, shape := range shapes {
		doc := shape.String()
		for _, src := range queries {
			q := xpath.MustParse(src)
			want := oracleResults(t, doc, q)
			got := twigmResults(t, doc, q, twigm.Options{Ordered: true})
			if !equal(got, want) {
				t.Fatalf("shape %d, query %s:\n got %q\nwant %q", si, src, got, want)
			}
			if ngot, ok := naiveResults(t, doc, q); ok && !equal(ngot, want) {
				t.Fatalf("shape %d, query %s: naive\n got %q\nwant %q", si, src, ngot, want)
			}
		}
	}
}

// TestProteinQueryAgainstOracle pins the paper's own query on a small
// protein corpus: result count must equal the generator's accounting and
// the oracle's results.
func TestProteinQueryAgainstOracle(t *testing.T) {
	p := datagen.Protein{TargetBytes: 300 << 10, Seed: 11}
	doc := p.String()
	entries, withRef := p.Counts()
	q := xpath.MustParse(datagen.PaperProteinQuery)
	want := oracleResults(t, doc, q)
	if len(want) != withRef {
		t.Fatalf("oracle found %d ids, generator says %d of %d entries have references",
			len(want), withRef, entries)
	}
	got := twigmResults(t, doc, q, twigm.Options{})
	if !equal(got, want) {
		t.Fatalf("twigm %d results, oracle %d", len(got), len(want))
	}
	// Every id is distinct and PIR-shaped.
	seen := map[string]bool{}
	for _, id := range got {
		if !strings.HasPrefix(id, "PIR") || seen[id] {
			t.Fatalf("bad or duplicate id %q", id)
		}
		seen[id] = true
	}
}

// TestTickerIncremental verifies results stream out while the ticker is
// still in flight (§1 requirement 2), and match the oracle.
func TestTickerIncremental(t *testing.T) {
	doc := datagen.Ticker{Trades: 300, Seed: 4}.String()
	q := xpath.MustParse("//trade[symbol='ACME']/price")
	want := oracleResults(t, doc, q)
	prog, err := twigm.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := twigm.Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), twigm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || len(results) != len(want) {
		t.Fatalf("got %d results, oracle %d", len(results), len(want))
	}
	// The first delivery must happen in the first tenth of the stream.
	if results[0].DeliveredAt > stats.Events/10 {
		t.Fatalf("first delivery at event %d of %d: not incremental", results[0].DeliveredAt, stats.Events)
	}
}

// TestNaiveExplodesTwigMDoesNot is the E5 contrast as a test: on a deep
// chain, the naive engine hits its match limit while TwigM completes.
func TestNaiveExplodesTwigMDoesNot(t *testing.T) {
	doc := datagen.RecursiveChain(18)
	src := datagen.ChainQuery(5)
	q := xpath.MustParse(src)

	eng, err := naive.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = naive.Collect(eng, xmlscan.NewScanner(strings.NewReader(doc)), naive.Options{MaxMatches: 5000})
	if !errors.Is(err, naive.ErrMatchLimit) {
		t.Fatalf("naive err = %v, want ErrMatchLimit", err)
	}

	prog, err := twigm.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := twigm.Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), twigm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("twigm results = %d, want 1", len(results))
	}
	if stats.PeakStackEntries > 18*6 {
		t.Fatalf("twigm peak entries %d — not polynomial-compact", stats.PeakStackEntries)
	}
}

// TestMalformedInputFailsCleanly runs the full pipeline on broken XML: a
// typed error, no panic, no partial-result corruption.
func TestMalformedInputFailsCleanly(t *testing.T) {
	docs := []string{
		"<a><b></a>",
		"<a>",
		"text only",
		"<a/><b/>",
		"<a attr=nope/>",
		"",
	}
	prog := twigm.MustCompile("//a")
	for _, doc := range docs {
		_, _, err := twigm.Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), twigm.Options{})
		if err == nil {
			t.Fatalf("no error for malformed %q", doc)
		}
	}
}
