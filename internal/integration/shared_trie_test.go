package integration

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/datagen"

	vitex "repro"
)

// overlapQueryMix is a prefix-heavy subscription family over the Portal and
// equivalence corpora: deep shared structural prefixes with per-query
// leaves — the shapes the shared trie factors — plus queries that cannot
// share (predicate on the first step, single-step, wildcard prefixes).
var overlapQueryMix = []string{
	"//channel//article/head/f1[. = 'v1']",
	"//channel//article/head/f2",
	"/portal/channel//article/head/f1",
	"//channel/article/head/f3[. = 'v0']",
	"//channel//article/body/sec/p",
	"//channel//article/body//p[. = 't7']",
	"//channel//article/@id",
	"//channel//article/head/*",
	"//article/head/f1/text()",
	"//section//table//cell",
	"//section//table/position",
	"//section/author",
	"//a//a/b",
	"//a/b[c]/d",
	"//trade[symbol='ACME']/price", // unshareable: predicate on step 1
	"//trade/price",
	"//trade/symbol/text()",
	"//nosuchprefix//nosuchleaf",
}

// streamInterleaved collects the full emission sequence a QuerySet delivers
// — query indexes included — so comparisons pin cross-query emission order,
// not just per-query results.
func streamInterleaved(t *testing.T, qs *vitex.QuerySet, doc string, opts vitex.Options) []vitex.SetResult {
	t.Helper()
	var out []vitex.SetResult
	if _, err := qs.Stream(strings.NewReader(doc), opts, func(sr vitex.SetResult) error {
		out = append(out, sr)
		return nil
	}); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	return out
}

// TestSharedTrieEquivalence pins the tentpole guarantee at the system
// level: prefix-shared evaluation (the default) is byte-identical — Value,
// Seq, NodeOffset, ConfirmedAt, DeliveredAt and the interleaved emission
// order across queries — to an engine with sharing disabled, for every
// corpus × Ordered × CountOnly × Parallel combination.
func TestSharedTrieEquivalence(t *testing.T) {
	corpora := equivalenceCorpora()
	corpora = append(corpora, struct{ name, doc string }{
		"portal", datagen.Portal{Articles: 40, Seed: 5}.String(),
	})
	shared, err := vitex.NewQuerySet(overlapQueryMix...)
	if err != nil {
		t.Fatal(err)
	}
	unshared, err := vitex.NewQuerySetConfigured(vitex.SetConfig{DisablePrefixSharing: true}, overlapQueryMix...)
	if err != nil {
		t.Fatal(err)
	}
	m := shared.Metrics()
	if m.TrieNodes == 0 || m.AnchoredMachines == 0 {
		t.Fatalf("sharing not engaged: %+v", m)
	}
	if um := unshared.Metrics(); um.TrieNodes != 0 || um.AnchoredMachines != 0 {
		t.Fatalf("disabled sharing engaged anyway: %+v", um)
	}
	for _, corpus := range corpora {
		for _, ordered := range []bool{false, true} {
			for _, countOnly := range []bool{false, true} {
				for _, parallel := range []int{0, 3} {
					opts := vitex.Options{Ordered: ordered, CountOnly: countOnly, Parallel: parallel}
					name := fmt.Sprintf("%s/ordered=%v/count=%v/par=%d", corpus.name, ordered, countOnly, parallel)
					got := streamInterleaved(t, shared, corpus.doc, opts)
					want := streamInterleaved(t, unshared, corpus.doc, opts)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: shared-trie evaluation diverges\nshared   %+v\nunshared %+v",
							name, got, want)
					}
				}
			}
		}
	}
}

// TestSharedTrieRandomizedDifferential extends the randomized campaign with
// the sharing dimension: random query sets (QueryGen grammar, plus forced
// prefix-overlapping families) over random documents, evaluated with
// sharing on and off, must agree on the full interleaved emission sequence.
// Mutations (Add/Remove/Replace applied identically to both sets) keep the
// trie grafting/pruning honest mid-campaign.
func TestSharedTrieRandomizedDifferential(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	rng := rand.New(rand.NewSource(77))
	gen := datagen.DefaultQueryGen
	for round := 0; round < rounds; round++ {
		// A mix of grammar-random queries and an explicit overlapping
		// family on the same alphabet (deep predicate-free prefixes are
		// rare in pure grammar output).
		var sources []string
		for i := 0; i < 4+rng.Intn(4); i++ {
			sources = append(sources, gen.Generate(rng))
		}
		for i := 0; i < 3+rng.Intn(3); i++ {
			leaf := []string{"c", "d", "@id", "text()", "c[. = '1']"}[rng.Intn(5)]
			sources = append(sources, fmt.Sprintf("//a/%s/%s", []string{"b", "a"}[rng.Intn(2)], leaf))
		}
		shared, err := vitex.NewQuerySet(sources...)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		unshared, err := vitex.NewQuerySetConfigured(vitex.SetConfig{DisablePrefixSharing: true}, sources...)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		doc := datagen.ChurnRandomTree.Generate(rand.New(rand.NewSource(int64(round) * 131)))
		opts := vitex.Options{Ordered: rng.Intn(2) == 0, CountOnly: rng.Intn(4) == 0}
		if rng.Intn(3) == 0 {
			opts.Parallel = 2 + rng.Intn(2)
		}
		got := streamInterleaved(t, shared, doc, opts)
		want := streamInterleaved(t, unshared, doc, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d (%v, queries %q, doc %q): shared vs unshared diverge\nshared   %+v\nunshared %+v",
				round, opts, sources, doc, got, want)
		}
		// Churn both sets identically, stream again: grafting and pruning
		// under mutation must stay equivalent.
		for m := 0; m < 3; m++ {
			switch rng.Intn(3) {
			case 0:
				q := vitex.MustCompile(gen.Generate(rng))
				if _, err := shared.Add(q); err != nil {
					t.Fatal(err)
				}
				if _, err := unshared.Add(q); err != nil {
					t.Fatal(err)
				}
			case 1:
				if shared.Len() == 0 {
					continue
				}
				i := rng.Intn(shared.Len())
				if err := shared.Remove(i); err != nil {
					t.Fatal(err)
				}
				if err := unshared.Remove(i); err != nil {
					t.Fatal(err)
				}
			default:
				if shared.Len() == 0 {
					continue
				}
				i := rng.Intn(shared.Len())
				q := vitex.MustCompile(fmt.Sprintf("//a//b/%s", []string{"c", "d"}[rng.Intn(2)]))
				if err := shared.Replace(i, q); err != nil {
					t.Fatal(err)
				}
				if err := unshared.Replace(i, q); err != nil {
					t.Fatal(err)
				}
			}
		}
		got = streamInterleaved(t, shared, doc, opts)
		want = streamInterleaved(t, unshared, doc, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d after churn: shared vs unshared diverge\nshared   %+v\nunshared %+v",
				round, got, want)
		}
	}
}

// TestSharedTrieChurnCompaction drives enough shared-prefix churn to
// trigger trie compaction (dead node IDs outnumbering live nodes past the
// threshold) and pins that (a) the compaction actually ran, (b) no machine
// was recompiled by it, and (c) evaluation after re-anchoring is identical
// to a freshly built set — serial and parallel.
func TestSharedTrieChurnCompaction(t *testing.T) {
	doc := datagen.Portal{Articles: 25, Seed: 9}.String()
	qs, err := vitex.NewQuerySet()
	if err != nil {
		t.Fatal(err)
	}
	// Grow 40 queries over distinct deep prefixes, then remove the first
	// 30: each removal kills a whole private branch (3 nodes), so garbage
	// quickly exceeds both the threshold and the live count.
	var kept []string
	for i := 0; i < 40; i++ {
		src := fmt.Sprintf("//channel//extra%d/deep%d/leaf%d", i, i, i)
		if i >= 30 {
			src = fmt.Sprintf("//channel//article/head/f%d", i-30)
			kept = append(kept, src)
		}
		if _, err := qs.Add(vitex.MustCompile(src)); err != nil {
			t.Fatal(err)
		}
	}
	compiles0 := qs.Metrics().Compiles
	for i := 0; i < 30; i++ {
		if err := qs.Remove(0); err != nil {
			t.Fatal(err)
		}
	}
	m := qs.Metrics()
	if m.TrieCompactions == 0 {
		t.Fatalf("expected a trie compaction, metrics %+v", m)
	}
	if m.Compiles != compiles0 {
		t.Fatalf("trie compaction recompiled %d machines", m.Compiles-compiles0)
	}
	// The kept queries share one //channel//article/head chain; everything
	// else was pruned, and post-compaction garbage stays under the
	// re-compaction threshold.
	if m.TrieNodes != 3 {
		t.Fatalf("expected 3 live trie nodes for the kept prefix family, metrics %+v", m)
	}
	if m.TrieGarbage >= 16 && m.TrieGarbage > m.TrieNodes {
		t.Fatalf("garbage above the compaction threshold was left behind: %+v", m)
	}
	fresh, err := vitex.NewQuerySet(kept...)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{0, 3} {
		opts := vitex.Options{Parallel: parallel}
		got := streamInterleaved(t, qs, doc, opts)
		want := streamInterleaved(t, fresh, doc, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("par=%d: churned+compacted set diverges from fresh\nchurned %+v\nfresh   %+v",
				parallel, got, want)
		}
	}
}
