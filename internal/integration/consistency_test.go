package integration

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dom"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
	"repro/internal/xpath"

	vitex "repro"
)

// TestQuerySetMatchesIndividualRuns: evaluating N random queries in one
// shared scan must give exactly the per-query results of N separate runs.
func TestQuerySetMatchesIndividualRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		n := 2 + rng.Intn(4)
		sources := make([]string, n)
		for i := range sources {
			sources[i] = datagen.RandomQuery(rng, datagen.DefaultRandomTree, false)
		}
		qs, err := vitex.NewQuerySet(sources...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		shared := make([][]string, n)
		_, err = qs.Stream(strings.NewReader(doc), vitex.Options{Ordered: true}, func(sr vitex.SetResult) error {
			shared[sr.QueryIndex] = append(shared[sr.QueryIndex], sr.Value)
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, src := range sources {
			q := vitex.MustCompile(src)
			solo, err := q.EvaluateString(doc)
			if err != nil {
				t.Fatalf("trial %d query %d: %v", trial, i, err)
			}
			if !equal(shared[i], solo) {
				t.Fatalf("trial %d query %q:\nshared %q\nsolo   %q\ndoc: %s", trial, src, shared[i], solo, doc)
			}
		}
	}
}

// TestSerializeRescanRoundTrip: DOM-serializing a random document and
// rescanning the serialization must produce an identical tree (canonical
// serialization is a fixed point).
func TestSerializeRescanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		d1, err := dom.Build(xmlscan.NewScanner(strings.NewReader(doc)))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		s1 := d1.Root.Serialize()
		d2, err := dom.Build(xmlscan.NewScanner(strings.NewReader(s1)))
		if err != nil {
			t.Fatalf("trial %d rescan: %v\nserialized: %s", i, err, s1)
		}
		if s2 := d2.Root.Serialize(); s2 != s1 {
			t.Fatalf("trial %d: serialization not a fixed point:\n1: %s\n2: %s", i, s1, s2)
		}
	}
}

// TestOrderedDeliveryIsSorted: under random workloads, Ordered mode must
// deliver strictly increasing seqs, and the seq order must equal ascending
// NodeOffset order (both are document order).
func TestOrderedDeliveryIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		src := datagen.RandomQuery(rng, datagen.DefaultRandomTree, false)
		prog, err := twigm.Compile(xpath.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		var seqs, offs []int64
		_, _, err = twigm.Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)),
			twigm.Options{Ordered: true, Emit: func(r twigm.Result) error {
				seqs = append(seqs, r.Seq)
				offs = append(offs, r.NodeOffset)
				return nil
			}})
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(seqs, func(i, j int) bool { return seqs[i] < seqs[j] }) {
			t.Fatalf("trial %d: seqs out of order: %v (%s over %s)", trial, seqs, src, doc)
		}
		if !sort.SliceIsSorted(offs, func(i, j int) bool { return offs[i] < offs[j] }) {
			t.Fatalf("trial %d: offsets out of order: %v (%s over %s)", trial, offs, src, doc)
		}
	}
}

// TestUnionAgainstOracleRandomized mirrors the facade union test inside the
// integration campaign, with three-branch unions.
func TestUnionAgainstOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	trials := 60
	if testing.Short() {
		trials = 12
	}
	for i := 0; i < trials; i++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		branches := []string{
			datagen.RandomQuery(rng, datagen.DefaultRandomTree, false),
			datagen.RandomQuery(rng, datagen.DefaultRandomTree, false),
			datagen.RandomQuery(rng, datagen.DefaultRandomTree, false),
		}
		src := strings.Join(branches, " | ")
		d, err := dom.Build(xmlscan.NewScanner(strings.NewReader(doc)))
		if err != nil {
			t.Fatal(err)
		}
		nodes := dom.EvalString(d, src)
		want := make([]string, 0, len(nodes))
		for _, n := range nodes {
			want = append(want, n.Serialize())
		}
		q := vitex.MustCompile(src)
		got, err := q.EvaluateString(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(got, want) {
			t.Fatalf("trial %d: %s over %s\n got %q\nwant %q", i, src, doc, got, want)
		}
	}
}
