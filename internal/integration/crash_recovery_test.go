package integration

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// buildVitexd compiles the real daemon binary (the crash harness needs a
// process it can SIGKILL, not an in-process run()).
func buildVitexd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vitexd")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/vitexd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building vitexd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running vitexd subprocess.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startVitexd launches the binary and waits for its listening line.
func startVitexd(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "vitexd listening on "); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					select {
					case addrCh <- rest[:i]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d := &daemon{cmd: cmd, addr: addr}
		t.Cleanup(d.kill)
		return d
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("vitexd never reported a listening address")
		return nil
	}
}

// kill SIGKILLs the daemon — no drain, no flush, the crash under test.
func (d *daemon) kill() {
	if d.cmd.ProcessState != nil {
		return
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// crashDoc is the one-match document the burst publishes: the price names
// the document's own cursor, so a replayed payload proves WAL integrity,
// not just presence.
func crashDoc(n int64) string {
	return fmt.Sprintf("<feed><trade><symbol>ACME</symbol><price>%d</price></trade></feed>", n)
}

// TestCrashRecovery is the crash harness: a real vitexd is SIGKILLed in the
// middle of a publish burst with a live subscriber attached, restarted on
// the same data directory, and the subscriber resumes from its interruption
// token. Every acknowledged document must come back exactly once with its
// exact payload, cursors must be monotonic across the splice, and the
// post-restart publish must continue the cursor space. Table-driven over
// both slow-consumer policies.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness")
	}
	bin := buildVitexd(t)
	for _, policy := range []string{"block", "drop"} {
		t.Run(policy, func(t *testing.T) {
			dataDir := t.TempDir()
			d1 := startVitexd(t, bin, "-addr", "127.0.0.1:0", "-data", dataDir, "-policy", policy)
			cl := client.New("http://" + d1.addr)
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			sub, err := cl.Subscribe(ctx, "burst", "//trade[symbol='ACME']/price")
			if err != nil {
				t.Fatal(err)
			}

			// The live consumer collects until the crash severs it, then
			// reports the resume token.
			stream, err := cl.Results(ctx, "burst", sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			type consumed struct {
				results []server.Delivery
				token   client.ResumeToken
			}
			consumerCh := make(chan consumed, 1)
			go func() {
				var got consumed
				for {
					d, err := stream.Next()
					if err != nil {
						var interrupted *client.ErrStreamInterrupted
						if errors.As(err, &interrupted) {
							got.token = interrupted.Token
						}
						stream.Close()
						consumerCh <- got
						return
					}
					if d.Type == server.DeliveryResult {
						got.results = append(got.results, *d)
					}
				}
			}()

			// The burst: one synchronous publisher, so acknowledged DocSeq ==
			// publish order with no holes. Killed mid-flight from outside.
			var acked atomic.Int64
			pubDone := make(chan struct{})
			go func() {
				defer close(pubDone)
				for n := int64(1); n <= 200; n++ {
					pub, err := cl.Publish(ctx, "burst", strings.NewReader(crashDoc(n)))
					if err != nil {
						return // the crash
					}
					if pub.DocSeq != n {
						t.Errorf("publish %d acknowledged as DocSeq %d", n, pub.DocSeq)
						return
					}
					acked.Store(n)
				}
			}()
			for acked.Load() < 15 {
				time.Sleep(time.Millisecond)
			}
			d1.kill()
			<-pubDone
			lastAcked := acked.Load()
			preCrash := <-consumerCh

			// Restart on the same directory and resume from the token.
			d2 := startVitexd(t, bin, "-addr", "127.0.0.1:0", "-data", dataDir, "-policy", policy)
			cl2 := client.New("http://" + d2.addr)
			token := preCrash.token
			token.Channel, token.SubID = "burst", sub.ID // tokens survive re-dial
			resumed, err := cl2.Resume(ctx, token)
			if err != nil {
				t.Fatalf("resume after restart: %v", err)
			}
			defer resumed.Close()

			// A sentinel publish proves the cursor space continued and bounds
			// the resumed stream.
			sentinel, err := cl2.Publish(ctx, "burst", strings.NewReader(crashDoc(999)))
			if err != nil {
				t.Fatal(err)
			}
			if sentinel.DocSeq <= lastAcked {
				t.Fatalf("post-restart publish got DocSeq %d, not after last acknowledged %d", sentinel.DocSeq, lastAcked)
			}
			if sentinel.DocSeq > lastAcked+2 {
				t.Fatalf("post-restart DocSeq %d skips cursors (last acked %d, at most one in-flight doc)", sentinel.DocSeq, lastAcked)
			}

			var postCrash []server.Delivery
			for {
				d, err := resumed.Next()
				if err != nil {
					t.Fatalf("resumed stream after %d deliveries: %v", len(postCrash), err)
				}
				if d.Type == server.DeliveryGap {
					t.Fatalf("resumed stream gap: %+v", d)
				}
				if d.Type == server.DeliveryResult {
					postCrash = append(postCrash, *d)
					if d.DocSeq == sentinel.DocSeq {
						break
					}
				}
			}

			// The spliced stream: exactly-once per acknowledged document,
			// correct payloads, monotonic cursors.
			spliced := append(append([]server.Delivery(nil), preCrash.results...), postCrash...)
			seen := map[int64]int{}
			var prev int64
			for i, d := range spliced {
				if d.DocSeq < prev {
					t.Fatalf("cursor regressed at delivery %d: %d after %d", i, d.DocSeq, prev)
				}
				prev = d.DocSeq
				seen[d.DocSeq]++
				want := crashDoc(d.DocSeq)
				if d.DocSeq == sentinel.DocSeq {
					want = crashDoc(999)
				}
				wantValue := want[strings.Index(want, "<price>"):strings.Index(want, "</trade>")]
				if d.Value != wantValue {
					t.Fatalf("doc %d delivered %q, want %q (WAL payload mangled?)", d.DocSeq, d.Value, wantValue)
				}
			}
			for n := int64(1); n <= lastAcked; n++ {
				if seen[n] != 1 {
					t.Fatalf("acknowledged doc %d delivered %d times, want exactly once (acked through %d)", n, seen[n], lastAcked)
				}
			}
			for doc, count := range seen {
				if count != 1 {
					t.Fatalf("doc %d delivered %d times", doc, count)
				}
				if doc > lastAcked+1 && doc != sentinel.DocSeq {
					t.Fatalf("doc %d delivered but only %d were acknowledged and one could be in flight", doc, lastAcked)
				}
			}
			if got := len(preCrash.results); got == 0 {
				t.Log("crash landed before any live delivery; splice was all replay (still valid)")
			} else {
				t.Logf("policy %s: %d live + %d replayed deliveries, %d acked docs, crash at ack %d",
					policy, got, len(postCrash), lastAcked, lastAcked)
			}
		})
	}
}
