package integration

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/datagen"
	"repro/internal/server"
)

// resumeRetry attaches with a resume token, retrying while the server has
// not yet noticed the severed predecessor (409 on the attach slot).
func resumeRetry(t *testing.T, ctx context.Context, cl *client.Client, token client.ResumeToken) *client.ResultStream {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stream, err := cl.Resume(ctx, token)
		if err == nil {
			return stream
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 409 || time.Now().After(deadline) {
			t.Fatalf("resume %+v: %v", token, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplayEquivalence pins the durability contract of resume: a subscriber
// that is repeatedly severed and resumed from its token — including
// mid-document — receives the byte-identical delivery sequence (Value, Seq,
// NodeOffset, DocSeq, in order) of a twin subscription on the same query
// that never disconnected, while the channel churns around them. Run under
// -race in CI.
func TestReplayEquivalence(t *testing.T) {
	b, err := server.Open(server.Config{
		DataDir:  t.TempDir(),
		RingSize: 1 << 15,
		Policy:   server.PolicyBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(b))
	defer ts.Close()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	}
	defer shutdown()
	cl := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const channel = "replay"
	const query = "//trade[symbol='ACME']/price"

	// The twin subscriptions under comparison.
	steady, err := cl.Subscribe(ctx, channel, query)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := cl.Subscribe(ctx, channel, query)
	if err != nil {
		t.Fatal(err)
	}

	// The steady consumer never disconnects; it drains concurrently until
	// shutdown ends its stream.
	var mu sync.Mutex
	var steadyGot []wireResult
	var steadyDone sync.WaitGroup
	steadyStream, err := cl.Results(ctx, channel, steady.ID)
	if err != nil {
		t.Fatal(err)
	}
	steadyDone.Add(1)
	go func() {
		defer steadyDone.Done()
		defer steadyStream.Close()
		for {
			d, err := steadyStream.Next()
			if err != nil {
				return
			}
			switch d.Type {
			case server.DeliveryResult:
				mu.Lock()
				steadyGot = append(steadyGot, wireResult{doc: d.DocSeq, seq: d.Seq, nodeOffset: d.NodeOffset, value: d.Value})
				mu.Unlock()
			case server.DeliveryGap:
				t.Errorf("steady consumer saw a gap: %+v", d)
				return
			case server.DeliveryEnd:
				return
			}
		}
	}()

	// The flaky consumer is driven inline: read a few deliveries, sever,
	// resume from the token, repeat. Deliberately misaligned with document
	// boundaries so tokens regularly land mid-document (seen > 0).
	var flakyGot []wireResult
	flakyStream, err := cl.Results(ctx, channel, flaky.ID)
	if err != nil {
		t.Fatal(err)
	}
	readFlaky := func(n int) {
		for i := 0; i < n; i++ {
			d, err := flakyStream.Next()
			if err != nil {
				t.Fatalf("flaky consumer after %d results: %v", len(flakyGot), err)
			}
			switch d.Type {
			case server.DeliveryResult:
				flakyGot = append(flakyGot, wireResult{doc: d.DocSeq, seq: d.Seq, nodeOffset: d.NodeOffset, value: d.Value})
			case server.DeliveryGap:
				t.Fatalf("flaky consumer saw a gap: %+v", d)
			case server.DeliveryEnd:
				t.Fatal("flaky consumer stream ended early")
			}
		}
	}
	interrupt := func() {
		token := flakyStream.Token()
		flakyStream.Close()
		flakyStream = resumeRetry(t, ctx, cl, token)
	}

	publish := func(seed int64) {
		doc := datagen.Ticker{Trades: 300, Seed: seed}.String()
		if _, err := cl.Publish(ctx, channel, strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}

	// The campaign: documents interleaved with churn on OTHER subscriptions
	// (adds, replaces, removes — the twins stay put) and with flaky-consumer
	// interruptions, including one before anything was consumed (full-replay
	// token) and several mid-document.
	churn := []string{"//trade/volume", "//trade[price>100]/symbol/text()", "//bogus/nothing"}
	var churnIDs []string
	interrupt() // cursor-0 token: resume-from-nothing replays everything

	for i := int64(1); i <= 12; i++ {
		publish(i)
		switch i % 4 {
		case 0:
			q := churn[i/4%int64(len(churn))]
			resp, err := cl.Subscribe(ctx, channel, q)
			if err != nil {
				t.Fatal(err)
			}
			churnIDs = append(churnIDs, resp.ID)
		case 1:
			if len(churnIDs) > 0 {
				if err := cl.Unsubscribe(ctx, channel, churnIDs[0]); err != nil {
					t.Fatal(err)
				}
				churnIDs = churnIDs[1:]
			}
		case 2:
			if len(churnIDs) > 0 {
				if _, err := cl.Replace(ctx, channel, churnIDs[0], churn[i%int64(len(churn))]); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Consume a deliberately odd number so the sever points drift across
		// document boundaries, then sever every few documents.
		readFlaky(3)
		if i%3 == 0 {
			interrupt()
		}
	}

	// A sentinel document with exactly one known match bounds both streams
	// deterministically — shutdown must not be the barrier, because a broker
	// shutting down mid-replay legitimately truncates the catch-up (the
	// consumer's token stays valid for the next process).
	const sentinel = "<price>424242</price>"
	if _, err := cl.Publish(ctx, channel,
		strings.NewReader("<feed><trade><symbol>ACME</symbol>"+sentinel+"</trade></feed>")); err != nil {
		t.Fatal(err)
	}
	for len(flakyGot) == 0 || flakyGot[len(flakyGot)-1].value != sentinel {
		readFlaky(1)
	}
	flakyStream.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(steadyGot)
		caughtUp := n > 0 && steadyGot[n-1].value == sentinel
		mu.Unlock()
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("steady consumer never saw the sentinel")
		}
		time.Sleep(2 * time.Millisecond)
	}
	shutdown()
	steadyDone.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(steadyGot) == 0 {
		t.Fatal("steady consumer received nothing; test is vacuous")
	}
	if len(flakyGot) != len(steadyGot) {
		t.Fatalf("flaky consumer got %d deliveries, steady got %d", len(flakyGot), len(steadyGot))
	}
	for i := range steadyGot {
		if flakyGot[i] != steadyGot[i] {
			t.Fatalf("delivery %d diverged:\n  flaky:  %+v\n  steady: %+v", i, flakyGot[i], steadyGot[i])
		}
	}
	t.Logf("replay equivalence held over %d deliveries with interleaved severs", len(steadyGot))
}
